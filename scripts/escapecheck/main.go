// Command escapecheck audits the //tafloc:noalloc functions against the
// compiler's escape analysis: the noalloc analyzer rejects allocating
// *syntax*, but only -gcflags=-m knows what actually reaches the heap
// (escaping parameters, interface boxing the analyzer has no list for,
// optimizer regressions across toolchain upgrades).
//
// It recompiles the audited packages with -m, collects every
// "escapes to heap" / "moved to heap" diagnostic that falls inside a
// //tafloc:noalloc function, drops the ones on //tafloc:alloc-ok lines,
// and requires the rest to appear in the committed allowlist
// (scripts/escapecheck/allowlist.txt). New escapes fail the audit; the
// fix is to remove the allocation, annotate the line with a
// justification, or — for a reviewed, deliberate escape — add an
// allowlist entry in the same commit that introduces it. Every entry
// must carry a "| reason: ..." field saying why the escape is
// acceptable; entries without one, and stale entries that no longer
// match any escape, fail the audit so the list tracks reality exactly.
//
// Usage (from the module root; CI runs exactly this):
//
//	go run ./scripts/escapecheck
package main

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"tafloc/internal/analysis/tags"
)

// auditPkgs are the package trees recompiled with -m. Keep in sync with
// where //tafloc:noalloc annotations live.
var auditPkgs = []string{"./internal/core", "./internal/serve", "./internal/mat"}

const (
	noallocMarker = "tafloc:noalloc"
	allocOKMarker = "tafloc:alloc-ok"
	allowlistPath = "scripts/escapecheck/allowlist.txt"
)

// span is the file range of one //tafloc:noalloc function.
type span struct {
	file     string // slash-separated, module-root relative
	fn       string
	from, to int // inclusive line range
}

func main() {
	if err := runAudit(); err != nil {
		fmt.Fprintf(os.Stderr, "escapecheck: %v\n", err)
		os.Exit(1)
	}
}

func runAudit() error {
	spans, allocOK, err := collectSpans()
	if err != nil {
		return err
	}
	if len(spans) == 0 {
		return fmt.Errorf("no //tafloc:noalloc functions found under %v; the audit would be vacuous", auditPkgs)
	}

	mOutput, err := compileWithM()
	if err != nil {
		return err
	}

	escapes := filterEscapes(mOutput, spans, allocOK)

	allowed, err := readAllowlist(allowlistPath)
	if err != nil {
		return err
	}

	var bad []string
	used := make(map[string]bool)
	for _, e := range escapes {
		if name, ok := matchAllowlist(allowed, e); ok {
			used[name] = true
			continue
		}
		bad = append(bad, e)
	}
	var stale []string
	for _, a := range allowed {
		if !used[a.matcher] {
			stale = append(stale, a.matcher)
		}
	}

	if len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "escapecheck: %d heap escape(s) inside //tafloc:noalloc functions:\n", len(bad))
		for _, e := range bad {
			fmt.Fprintf(os.Stderr, "  %s\n", e)
		}
		fmt.Fprintf(os.Stderr, "fix the allocation, annotate the line //tafloc:alloc-ok with a justification, or allowlist it (with a reason) in %s\n", allowlistPath)
		return fmt.Errorf("audit failed")
	}
	if len(stale) > 0 {
		for _, a := range stale {
			fmt.Fprintf(os.Stderr, "escapecheck: stale allowlist entry (matched nothing): %s\n", a)
		}
		fmt.Fprintf(os.Stderr, "delete stale entries from %s — the list must track reality exactly\n", allowlistPath)
		return fmt.Errorf("audit failed")
	}
	fmt.Printf("escapecheck: %d noalloc function(s) audited, no unreviewed heap escapes\n", len(spans))
	return nil
}

// collectSpans parses the audited trees for //tafloc:noalloc functions
// and //tafloc:alloc-ok suppressed lines.
func collectSpans() ([]span, map[string]bool, error) {
	var spans []span
	allocOK := make(map[string]bool) // "file:line"
	fset := token.NewFileSet()
	for _, pkg := range auditPkgs {
		root := strings.TrimPrefix(pkg, "./")
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if d.Name() == "testdata" {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return err
			}
			// Same skip rules as the analyzer suite: generated files
			// and files excluded by build constraints carry no
			// enforceable annotations.
			if tags.SkipFile(f) {
				return nil
			}
			rel := filepath.ToSlash(path)
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if markerIn(c.Text, allocOKMarker) {
						line := fset.Position(c.Pos()).Line
						allocOK[fmt.Sprintf("%s:%d", rel, line)] = true
						allocOK[fmt.Sprintf("%s:%d", rel, line+1)] = true
					}
				}
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil || fd.Body == nil {
					continue
				}
				marked := false
				for _, c := range fd.Doc.List {
					if markerIn(c.Text, noallocMarker) {
						marked = true
						break
					}
				}
				if !marked {
					continue
				}
				spans = append(spans, span{
					file: rel,
					fn:   fd.Name.Name,
					from: fset.Position(fd.Pos()).Line,
					to:   fset.Position(fd.End()).Line,
				})
			}
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
	}
	return spans, allocOK, nil
}

func markerIn(comment, marker string) bool {
	text := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(comment, "//"), "/*"))
	if !strings.HasPrefix(text, marker) {
		return false
	}
	rest := text[len(marker):]
	return rest == "" || rest[0] == ' ' || rest[0] == '\t' || rest[0] == ':'
}

// compileWithM recompiles the audited packages with -gcflags=-m and
// returns the compiler's stderr. The build cache only suppresses the
// diagnostics when an identical -m compile already ran on identical
// sources, in which case the previous audit's verdict still stands.
func compileWithM() (string, error) {
	args := []string{"build"}
	for _, pkg := range auditPkgs {
		pattern := "tafloc/" + strings.TrimPrefix(pkg, "./")
		args = append(args, "-gcflags="+pattern+"=-m")
	}
	args = append(args, auditPkgs...)
	cmd := exec.Command("go", args...)
	var out strings.Builder
	cmd.Stderr = &out
	cmd.Stdout = &out
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, out.String())
	}
	return out.String(), nil
}

var escapeRe = regexp.MustCompile(`^(.*\.go):(\d+):\d+: (.*(?:escapes to heap|moved to heap).*)$`)

// filterEscapes keeps the -m diagnostics that land inside a noalloc
// span and are not suppressed by an alloc-ok marker. Each kept escape
// is rendered "file:line [func]: message".
func filterEscapes(output string, spans []span, allocOK map[string]bool) []string {
	var escapes []string
	sc := bufio.NewScanner(strings.NewReader(output))
	for sc.Scan() {
		m := escapeRe.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		file := filepath.ToSlash(m[1])
		line, _ := strconv.Atoi(m[2])
		msg := m[3]
		for _, s := range spans {
			if s.file != file || line < s.from || line > s.to {
				continue
			}
			if allocOK[fmt.Sprintf("%s:%d", file, line)] {
				break
			}
			escapes = append(escapes, fmt.Sprintf("%s:%d [%s]: %s", file, line, s.fn, msg))
			break
		}
	}
	sort.Strings(escapes)
	return escapes
}

// entry is one reviewed escape: the matcher that identifies it and the
// mandatory reason a reviewer recorded for accepting it.
type entry struct {
	matcher string // "file:func: message-substring"
	reason  string
}

// readAllowlist loads non-blank, non-comment lines: each is
// "file:func: message-substring | reason: why-this-is-acceptable".
// Lines without a reason field fail the audit outright — an allowlist
// entry with no recorded justification is unreviewable.
func readAllowlist(path string) ([]entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var entries []entry
	var missing []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		matcher, reason, ok := strings.Cut(line, "| reason:")
		if !ok || strings.TrimSpace(reason) == "" {
			missing = append(missing, line)
			continue
		}
		entries = append(entries, entry{
			matcher: strings.TrimSpace(matcher),
			reason:  strings.TrimSpace(reason),
		})
	}
	if len(missing) > 0 {
		for _, line := range missing {
			fmt.Fprintf(os.Stderr, "escapecheck: allowlist entry has no \"| reason:\" field: %s\n", line)
		}
		return nil, fmt.Errorf("%s: %d entr%s missing a reason", path, len(missing),
			map[bool]string{true: "y is", false: "ies are"}[len(missing) == 1])
	}
	return entries, nil
}

// matchAllowlist matches an escape against the entries: an entry
// "file:func: substring" matches when the escape is in that file and
// function and its message contains the substring.
func matchAllowlist(entries []entry, escape string) (string, bool) {
	for _, e := range entries {
		fileFn, sub, ok := strings.Cut(e.matcher, ": ")
		if !ok {
			fileFn, sub = e.matcher, ""
		}
		file, fn, ok := strings.Cut(fileFn, ":")
		if !ok {
			continue
		}
		if strings.HasPrefix(escape, file+":") && strings.Contains(escape, "["+fn+"]") &&
			(sub == "" || strings.Contains(escape, sub)) {
			return e.matcher, true
		}
	}
	return "", false
}
