// Package taflocerr is the shared error taxonomy of the TafLoc service
// surface. Every error that crosses a package or process boundary —
// service methods, HTTP handlers, and the client SDK — carries one of
// the stable Codes below, so callers branch on errors.Is against the
// exported sentinels instead of matching message strings, and the same
// code travels unchanged over the wire.
//
// The taxonomy is transport-independent: internal/serve attaches codes
// to its method errors, the /v2 HTTP handlers serialize them into the
// response body, and package client decodes them back into the same
// sentinels. A caller therefore writes
//
//	if errors.Is(err, taflocerr.ErrUnknownZone) { ... }
//
// and the branch works identically against an in-process Service and a
// remote one reached through client.Dial.
package taflocerr

import (
	"errors"
	"fmt"
)

// Code is a stable, machine-readable error category. Codes are part of
// the v2 wire protocol: they appear verbatim in the "code" field of
// error response bodies and must never be renamed.
type Code string

// The taxonomy. One code per caller-distinguishable failure class.
const (
	// CodeUnknownZone: the addressed zone is not registered.
	CodeUnknownZone Code = "unknown_zone"
	// CodeZoneExists: AddZone for an id that is already registered.
	CodeZoneExists Code = "zone_exists"
	// CodeQueueFull: the zone's bounded ingest queue shed the batch.
	CodeQueueFull Code = "queue_full"
	// CodeBadLink: a report addressed a link index outside the zone's
	// deployment.
	CodeBadLink Code = "bad_link"
	// CodeBadRequest: malformed input (bad JSON, invalid parameters).
	CodeBadRequest Code = "bad_request"
	// CodeMethodNotAllowed: wrong HTTP method for the route.
	CodeMethodNotAllowed Code = "method_not_allowed"
	// CodeNotReady: the zone exists but has not published an estimate yet.
	CodeNotReady Code = "not_ready"
	// CodeZoneRemoved: the zone was removed while the caller watched it.
	CodeZoneRemoved Code = "zone_removed"
	// CodeStarted: an operation that requires a stopped service ran on a
	// started one (or Start ran twice).
	CodeStarted Code = "already_started"
	// CodeUnsupported: the server cannot perform the operation (for
	// example AddZone over HTTP without a configured zone factory).
	CodeUnsupported Code = "unsupported"
	// CodeCancelled: the operation's context was cancelled mid-flight.
	CodeCancelled Code = "cancelled"
	// CodeSnapshotVersion: a deployment snapshot was written by an
	// incompatible codec version (or its header is not a snapshot at all).
	CodeSnapshotVersion Code = "snapshot_version"
	// CodeSnapshotCorrupt: a deployment snapshot failed integrity
	// validation — truncated payload, CRC mismatch, or inconsistent
	// decoded state.
	CodeSnapshotCorrupt Code = "snapshot_corrupt"
	// CodeRehydrateFailed: a zone whose Model was evicted to the
	// snapshot store could not be rehydrated — the store read failed or
	// the stored snapshot no longer validates. The zone stays
	// registered; the operation that needed its Model retries the
	// rehydrate on the next call.
	CodeRehydrateFailed Code = "rehydrate_failed"
	// CodeInternal: unclassified server-side failure.
	CodeInternal Code = "internal"
)

// Error is a taxonomy error: a Code plus a human-readable message.
// Two Errors match under errors.Is when their Codes are equal, so any
// *Error can be compared against the canonical sentinels regardless of
// where its message was composed.
type Error struct {
	// Code is the stable category.
	Code Code
	// Message is the human-readable description.
	Message string
	// Err is an optional wrapped cause.
	Err error
}

// New builds a taxonomy error with a fixed message.
func New(code Code, message string) *Error {
	return &Error{Code: code, Message: message}
}

// Errorf builds a taxonomy error with a formatted message. %w verbs
// (one or several) wrap their operands as causes.
func Errorf(code Code, format string, args ...any) *Error {
	err := fmt.Errorf(format, args...)
	e := &Error{Code: code, Message: err.Error()}
	// Keep the fmt wrapper as the cause when it wraps anything, so
	// errors.Is/As reach every %w operand (including multi-%w, whose
	// wrapper exposes Unwrap() []error).
	switch err.(type) {
	case interface{ Unwrap() error }, interface{ Unwrap() []error }:
		e.Err = err
	}
	return e
}

// Error implements the error interface.
func (e *Error) Error() string { return e.Message }

// Unwrap exposes the cause chain.
func (e *Error) Unwrap() error { return e.Err }

// Is matches any *Error carrying the same Code, which is what makes
// errors.Is(err, taflocerr.ErrX) work across process boundaries.
func (e *Error) Is(target error) bool {
	t, ok := target.(*Error)
	return ok && t.Code == e.Code
}

// Canonical sentinels, one per Code. FromCode returns these, so client
// errors decoded from the wire satisfy errors.Is against them.
var (
	ErrUnknownZone      = New(CodeUnknownZone, "tafloc: unknown zone")
	ErrZoneExists       = New(CodeZoneExists, "tafloc: zone already registered")
	ErrQueueFull        = New(CodeQueueFull, "tafloc: zone queue full")
	ErrBadLink          = New(CodeBadLink, "tafloc: report link out of range")
	ErrBadRequest       = New(CodeBadRequest, "tafloc: bad request")
	ErrMethodNotAllowed = New(CodeMethodNotAllowed, "tafloc: method not allowed")
	ErrNotReady         = New(CodeNotReady, "tafloc: no estimate published yet")
	ErrZoneRemoved      = New(CodeZoneRemoved, "tafloc: zone removed")
	ErrStarted          = New(CodeStarted, "tafloc: service already started")
	ErrUnsupported      = New(CodeUnsupported, "tafloc: operation not supported")
	ErrCancelled        = New(CodeCancelled, "tafloc: operation cancelled")
	ErrSnapshotVersion  = New(CodeSnapshotVersion, "tafloc: unsupported snapshot version")
	ErrSnapshotCorrupt  = New(CodeSnapshotCorrupt, "tafloc: corrupt snapshot")
	ErrRehydrateFailed  = New(CodeRehydrateFailed, "tafloc: zone rehydrate failed")
	ErrInternal         = New(CodeInternal, "tafloc: internal error")
)

var sentinels = map[Code]*Error{
	CodeUnknownZone:      ErrUnknownZone,
	CodeZoneExists:       ErrZoneExists,
	CodeQueueFull:        ErrQueueFull,
	CodeBadLink:          ErrBadLink,
	CodeBadRequest:       ErrBadRequest,
	CodeMethodNotAllowed: ErrMethodNotAllowed,
	CodeNotReady:         ErrNotReady,
	CodeZoneRemoved:      ErrZoneRemoved,
	CodeStarted:          ErrStarted,
	CodeUnsupported:      ErrUnsupported,
	CodeCancelled:        ErrCancelled,
	CodeSnapshotVersion:  ErrSnapshotVersion,
	CodeSnapshotCorrupt:  ErrSnapshotCorrupt,
	CodeRehydrateFailed:  ErrRehydrateFailed,
	CodeInternal:         ErrInternal,
}

// FromCode returns the canonical sentinel for a wire code, or
// ErrInternal for an unrecognized one (a newer server speaking a newer
// taxonomy still yields a typed error rather than a nil or a panic).
func FromCode(code Code) *Error {
	if s, ok := sentinels[code]; ok {
		return s
	}
	return ErrInternal
}

// CodeOf extracts the Code of the first *Error in err's chain
// (including branches joined with errors.Join or multi-%w wrapping),
// or CodeInternal when the chain carries none.
func CodeOf(err error) Code {
	var e *Error
	if errors.As(err, &e) {
		return e.Code
	}
	return CodeInternal
}

// HTTPStatus maps a Code to the status the /v2 handlers respond with.
func HTTPStatus(code Code) int {
	switch code {
	case CodeUnknownZone, CodeNotReady:
		return 404
	case CodeZoneExists:
		return 409
	case CodeQueueFull:
		return 429
	case CodeBadLink:
		return 422
	case CodeBadRequest:
		return 400
	case CodeMethodNotAllowed:
		return 405
	case CodeStarted:
		return 409
	case CodeUnsupported:
		return 501
	case CodeCancelled:
		return 499 // client closed request (nginx convention)
	case CodeSnapshotVersion:
		return 400
	case CodeSnapshotCorrupt:
		return 422
	case CodeRehydrateFailed:
		// The zone exists and will retry on the next request; the store
		// behind it is what is unavailable.
		return 503
	default:
		return 500
	}
}
