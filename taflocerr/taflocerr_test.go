package taflocerr

import (
	"errors"
	"fmt"
	"testing"
)

func TestIsMatchesByCode(t *testing.T) {
	legacy := New(CodeUnknownZone, "serve: unknown zone") // different message, same code
	if !errors.Is(legacy, ErrUnknownZone) {
		t.Error("same-code errors should match under errors.Is")
	}
	if errors.Is(legacy, ErrQueueFull) {
		t.Error("different-code errors must not match")
	}
	wrapped := fmt.Errorf("handler: %w", legacy)
	if !errors.Is(wrapped, ErrUnknownZone) {
		t.Error("wrapping must preserve the match")
	}
}

func TestErrorfWrapsCause(t *testing.T) {
	cause := errors.New("boom")
	err := Errorf(CodeInternal, "update failed: %w", cause)
	if !errors.Is(err, cause) {
		t.Error("Errorf %%w operand not in the chain")
	}
	if !errors.Is(err, ErrInternal) {
		t.Error("Errorf result should match its code sentinel")
	}
	if err.Error() != "update failed: boom" {
		t.Errorf("message = %q", err.Error())
	}
}

func TestMultiWrapAndJoin(t *testing.T) {
	e1, e2 := errors.New("first"), errors.New("second")
	err := Errorf(CodeBadRequest, "both: %w and %w", e1, e2)
	if !errors.Is(err, e1) || !errors.Is(err, e2) {
		t.Error("multi-%w operands not reachable through the chain")
	}
	if got := CodeOf(err); got != CodeBadRequest {
		t.Errorf("CodeOf multi-wrap = %s", got)
	}
	joined := errors.Join(errors.New("plain"), ErrQueueFull)
	if got := CodeOf(fmt.Errorf("outer: %w", joined)); got != CodeQueueFull {
		t.Errorf("CodeOf through errors.Join = %s, want %s", got, CodeQueueFull)
	}
}

func TestFromCodeRoundTrip(t *testing.T) {
	for code, want := range sentinels {
		if got := FromCode(code); got != want {
			t.Errorf("FromCode(%s) = %v, want %v", code, got, want)
		}
		if got := CodeOf(want); got != code {
			t.Errorf("CodeOf(%v) = %s, want %s", want, got, code)
		}
	}
	if FromCode("no_such_code") != ErrInternal {
		t.Error("unknown code should map to ErrInternal")
	}
}

func TestCodeOfWalksChain(t *testing.T) {
	err := fmt.Errorf("outer: %w", fmt.Errorf("mid: %w", ErrBadLink))
	if got := CodeOf(err); got != CodeBadLink {
		t.Errorf("CodeOf = %s, want %s", got, CodeBadLink)
	}
	if got := CodeOf(errors.New("untyped")); got != CodeInternal {
		t.Errorf("untyped error CodeOf = %s, want internal", got)
	}
}

func TestHTTPStatus(t *testing.T) {
	cases := map[Code]int{
		CodeUnknownZone:      404,
		CodeNotReady:         404,
		CodeZoneExists:       409,
		CodeQueueFull:        429,
		CodeBadLink:          422,
		CodeBadRequest:       400,
		CodeMethodNotAllowed: 405,
		CodeUnsupported:      501,
		CodeSnapshotVersion:  400,
		CodeSnapshotCorrupt:  422,
		CodeRehydrateFailed:  503,
		CodeInternal:         500,
	}
	for code, want := range cases {
		if got := HTTPStatus(code); got != want {
			t.Errorf("HTTPStatus(%s) = %d, want %d", code, got, want)
		}
	}
}
