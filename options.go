package tafloc

import (
	"time"

	"tafloc/internal/api"
	"tafloc/internal/core"
	"tafloc/internal/mat"
	"tafloc/internal/serve"
)

// Option configures a System built by Open or OpenDeployment. Options
// compose left to right; later options win on conflict.
type Option func(*openConfig)

type openConfig struct {
	sys     core.SystemOptions
	workers int
	setW    bool
}

// WithMatcher selects the localization matcher by registry name —
// "nn", "knn", "bayes", or "wknn" (the mask-aware default), plus any
// name installed with RegisterMatcher. Unknown names fail Open.
func WithMatcher(name string) Option {
	return func(c *openConfig) { c.sys.MatcherName = name; c.sys.Matcher = nil }
}

// WithMatcherImpl injects a concrete Matcher implementation, bypassing
// the registry.
func WithMatcherImpl(m Matcher) Option {
	return func(c *openConfig) { c.sys.Matcher = m; c.sys.MatcherName = "" }
}

// WithLoLi overrides the LoLi-IR reconstruction hyperparameters.
func WithLoLi(o LoLiOptions) Option {
	return func(c *openConfig) { c.sys.LoLi = o }
}

// WithReferences overrides reference-location selection.
func WithReferences(o ReferenceOptions) Option {
	return func(c *openConfig) { c.sys.Refs = o }
}

// WithRecSigma sets the assumed error std (dB) of reconstructed entries
// for the built-in weighted matcher.
func WithRecSigma(db float64) Option {
	return func(c *openConfig) { c.sys.RecSigmaDB = db }
}

// WithMaskThreshold sets the |survey - vacant| deviation (dB) above
// which an entry counts as distorted when the mask is learned from the
// day-0 survey; negative forces the geometric ellipse mask.
func WithMaskThreshold(db float64) Option {
	return func(c *openConfig) { c.sys.MaskThresholdDB = db }
}

// WithWorkers sets the global parallel worker count used by the
// reconstruction and matching kernels (the same knob as SetWorkers);
// n <= 0 restores the GOMAXPROCS-aware default.
func WithWorkers(n int) Option {
	return func(c *openConfig) { c.workers = n; c.setW = true }
}

// Open builds a System from a day-0 full survey with functional
// options — the v2 replacement for NewSystem:
//
//	sys, err := tafloc.Open(layout, survey, vacant,
//	    tafloc.WithMatcher("wknn"),
//	    tafloc.WithLoLi(loli),
//	    tafloc.WithWorkers(8))
func Open(layout *Layout, survey *Matrix, vacant []float64, opts ...Option) (*System, error) {
	c := openConfig{sys: core.DefaultSystemOptions()}
	for _, o := range opts {
		o(&c)
	}
	if c.setW {
		mat.SetWorkers(c.workers)
	}
	return core.NewSystem(layout, survey, vacant, c.sys)
}

// OpenDeployment surveys dep at day 0 and builds a System with the
// given options — the one-call quickstart path (v2 replacement for
// BuildSystem).
func OpenDeployment(dep *Deployment, opts ...Option) (*System, error) {
	layout, err := core.NewLayout(dep.Channel.Links(), dep.Grid, dep.Config.RF.MaskExcessM())
	if err != nil {
		return nil, err
	}
	survey, _ := dep.Survey(0)
	vacant := dep.VacantCapture(0, 100)
	return Open(layout, survey, vacant, opts...)
}

// ServiceOption configures a Service built by NewService.
type ServiceOption func(*serve.Config)

// WithZoneQueue sets the per-zone bounded ingest queue depth (pending
// batches before Report sheds load). An explicit depth <= 0 selects an
// unbuffered queue: Report hands batches directly to the zone worker
// and sheds whenever it is busy.
func WithZoneQueue(depth int) ServiceOption {
	if depth <= 0 {
		depth = -1 // explicit zero, not "use the default"
	}
	return func(c *serve.Config) { c.QueueDepth = depth }
}

// WithBatch sets the maximum reports a zone worker folds per batched
// match query; size <= 0 means one match query per batch.
func WithBatch(size int) ServiceOption {
	if size <= 0 {
		size = -1
	}
	return func(c *serve.Config) { c.BatchSize = size }
}

// WithWindow sets the per-link live-window length; n <= 0 selects the
// minimum window of 1 (no averaging).
func WithWindow(n int) ServiceOption {
	if n <= 0 {
		n = -1
	}
	return func(c *serve.Config) { c.Window = n }
}

// WithDetectThreshold sets the presence-detection threshold in dB. An
// explicit db <= 0 disables presence gating entirely: every batch
// localizes, and published estimates always have Present set (the
// deviation signal is still computed and reported).
func WithDetectThreshold(db float64) ServiceOption {
	if db <= 0 {
		db = -1
	}
	return func(c *serve.Config) { c.DetectThresholdDB = db }
}

// WithLocateWorkers sets the size of the service's shared
// locate-executor pool: the goroutines that run every zone's fold and
// match rounds (default GOMAXPROCS). Zones are goroutine-free state
// machines, so this — not the zone count — bounds the service's compute
// concurrency; n <= 0 selects the minimum of one worker.
func WithLocateWorkers(n int) ServiceOption {
	if n <= 0 {
		n = -1
	}
	return func(c *serve.Config) { c.LocateWorkers = n }
}

// WithDetector selects the presence detector by registry name — "mad",
// "rms", "maxlink", or any name installed with RegisterDetector.
// NewService returns a taflocerr error for an unknown name.
func WithDetector(name string) ServiceOption {
	return func(c *serve.Config) { c.Detector = name }
}

// WithWatchBuffer sets the per-watcher event buffer length (minimum 1).
func WithWatchBuffer(n int) ServiceOption {
	if n <= 0 {
		n = -1
	}
	return func(c *serve.Config) { c.WatchBuffer = n }
}

// WithWatchHeartbeat sets how often idle SSE watch streams emit a
// ": heartbeat" comment so proxy idle timeouts do not kill them
// (default 15s). d <= 0 disables heartbeats.
func WithWatchHeartbeat(d time.Duration) ServiceOption {
	if d <= 0 {
		d = -1
	}
	return func(c *serve.Config) { c.WatchHeartbeat = d }
}

// WithHistory sets the per-zone ring depth of the published-estimate
// history and smoothed trajectory served over GET /v2/zones/{id}/history
// and /track (default 256). An explicit n <= 0 disables history and
// trajectory tracking entirely; the routes then answer unsupported.
func WithHistory(n int) ServiceOption {
	if n <= 0 {
		n = -1
	}
	return func(c *serve.Config) { c.History = n }
}

// WithTracking overrides the trajectory filter options used by every
// zone's publish-path Kalman smoother (default tafloc.DefaultTrackOptions).
// Invalid options fail NewService with a taflocerr error. Tracking is
// on whenever history is (see WithHistory); this option only tunes it.
func WithTracking(opts TrackOptions) ServiceOption {
	return func(c *serve.Config) { c.Track = opts }
}

// WithZoneFactory enables zone creation over the /v2 HTTP surface
// (POST /v2/zones/{id}): the factory receives the requested id and
// ZoneSpec and returns the backing System.
func WithZoneFactory(f ZoneFactory) ServiceOption {
	return func(c *serve.Config) { c.ZoneFactory = f }
}

// WithMaxHotZones caps how many zones may hold a resident Model at
// once. Over the cap, the least-recently-touched zone is checkpointed
// into the snapshot store (WithSnapshotStore, defaulting to an
// in-memory store) and its Model dropped; the zone stays registered and
// rehydrates transparently on its next report, locate, track, or
// snapshot request — a service can therefore register far more zones
// than fit in memory. n <= 0 selects the minimum cache of one hot zone;
// omit the option entirely for the default of no cap.
func WithMaxHotZones(n int) ServiceOption {
	if n <= 0 {
		n = -1
	}
	return func(c *serve.Config) { c.MaxHotZones = n }
}

// WithSnapshotStore sets the snapshot store behind the residency tier:
// where evicted zones' Models are checkpointed to and rehydrated from
// (see WithMaxHotZones), and the target of Service.EvictZone. Use
// NewDirStore to share the checkpointer's state directory, so evicted
// state and crash-recovery state are one artifact; NewMemStore bounds
// memory without touching disk.
func WithSnapshotStore(st SnapshotStore) ServiceOption {
	return func(c *serve.Config) { c.Store = st }
}

// NewService builds an empty multi-zone service with functional
// options; register zones with Service.AddZone (before or after Start):
//
//	svc, err := tafloc.NewService(
//	    tafloc.WithZoneQueue(512),
//	    tafloc.WithDetector("rms"),
//	    tafloc.WithZoneFactory(factory))
//
// Invalid configurations — an unregistered detector name, say — are
// returned as taflocerr errors, never panics; only the deprecated
// legacy constructor NewServiceFromConfig keeps the documented panic.
func NewService(opts ...ServiceOption) (*Service, error) {
	var cfg serve.Config
	for _, o := range opts {
		o(&cfg)
	}
	return serve.NewService(cfg)
}

// Registry surface: strategy injection by name.

// MatcherFactory builds a Matcher for the registry.
type MatcherFactory = core.MatcherFactory

// DetectorFactory builds a presence detector for the registry.
type DetectorFactory = core.DetectorFactory

// Presence is the detection-gate interface.
type Presence = core.Presence

// RegisterMatcher installs a named matcher strategy, selectable via
// WithMatcher and the -matcher flags of the commands.
func RegisterMatcher(name string, f MatcherFactory) error { return core.RegisterMatcher(name, f) }

// RegisterDetector installs a named presence-detection strategy,
// selectable via WithDetector.
func RegisterDetector(name string, f DetectorFactory) error { return core.RegisterDetector(name, f) }

// MatcherNames lists the registered matcher names, sorted.
func MatcherNames() []string { return core.MatcherNames() }

// DetectorNames lists the registered detector names, sorted.
func DetectorNames() []string { return core.DetectorNames() }

// NewMatcherByName builds a matcher from the registry.
func NewMatcherByName(name string) (Matcher, error) { return core.NewMatcherByName(name) }

// Wire and lifecycle types of the v2 service surface.
type (
	// ZoneFactory builds a System for a zone created over the wire.
	ZoneFactory = serve.ZoneFactory
	// ZoneSpec parameterizes server-side zone creation.
	ZoneSpec = api.ZoneSpec
)
