// Package tafloc is a reproduction of "TafLoc: Time-adaptive and
// Fine-grained Device-free Localization with Little Cost" (Chang, Xiong,
// Chen, Wang, Hu, Fang, Wang — SIGCOMM 2016).
//
// TafLoc is an RSS-fingerprint device-free localization (DfL) system that
// keeps its fingerprint database fresh at a fraction of the usual cost:
// instead of re-surveying every grid cell when the environment drifts, it
// measures a handful of reference locations plus one empty-room capture
// and reconstructs the entire fingerprint matrix with the LoLi-IR
// low-rank optimization.
//
// The package re-exports the stable surface of the internal packages:
//
//   - Deployment simulation (the paper's hardware testbed substitute):
//     Deployment, TestbedConfig, PaperConfig, Channel, ChannelParams.
//   - The TafLoc system itself: System, Layout, LoLiOptions,
//     Reconstruction, reference selection, matchers.
//   - Baselines: RTIImager, RASSTracker.
//   - Evaluation harnesses that regenerate every figure of the paper:
//     Fig1, Fig3, Fig4, Fig5, DriftTable, CostTable, Ablation.
//   - The measurement-collection network pipeline: Collector, Fleet,
//     Orchestrator, RSSReport.
//   - The multi-zone serving layer (Service) with runtime zone
//     lifecycle, a versioned HTTP surface, and streaming position
//     watch; package client is the typed SDK for it and package
//     taflocerr the shared error taxonomy.
//
// Quickstart (v2 API — functional options everywhere):
//
//	dep, _ := tafloc.NewDeployment(tafloc.PaperConfig())
//	sys, _ := tafloc.OpenDeployment(dep,            // day-0 full survey
//	    tafloc.WithMatcher("wknn"))
//	// ... months pass, RSS drifts ...
//	refCols, _ := dep.SurveyCells(sys.References(), 90)
//	sys.UpdateContext(ctx, refCols, dep.VacantCapture(90, 100))
//	loc, _ := sys.Locate(dep.Channel.MeasureLive(p, 90))
//
// Serving and consuming zones over HTTP:
//
//	svc, _ := tafloc.NewService(tafloc.WithDetectThreshold(0.25))
//	svc.AddZone("lobby", sys)
//	svc.Start(ctx)
//	go http.ListenAndServe(":8750", svc.Handler())
//	...
//	cli, _ := client.Dial(ctx, "http://localhost:8750")
//	rep, _ := cli.NewReporter(ctx, "lobby")   // streaming NDJSON ingest
//	rep.Send(reports...)                      // auto-batched, acked, shed-counted
//	ch, _ := cli.Watch(ctx, "lobby")
//	for est := range ch { ... }
//	pts, _ := cli.Track(ctx, "lobby", 50)     // smoothed trajectory + velocity
//
// See the examples directory for runnable programs, docs/API.md for the
// HTTP protocol and error taxonomy, and EXPERIMENTS.md for the
// paper-vs-measured record.
package tafloc

import (
	"tafloc/internal/collector"
	"tafloc/internal/core"
	"tafloc/internal/eval"
	"tafloc/internal/geom"
	"tafloc/internal/mat"
	"tafloc/internal/rass"
	"tafloc/internal/rf"
	"tafloc/internal/rti"
	"tafloc/internal/serve"
	"tafloc/internal/store"
	"tafloc/internal/testbed"
	"tafloc/internal/track"
	"tafloc/internal/wire"
)

// Geometry primitives.
type (
	// Point is a 2-D position in metres.
	Point = geom.Point
	// Segment is one radio link's line-of-sight path.
	Segment = geom.Segment
	// Grid is the monitored area's cell discretization.
	Grid = geom.Grid
)

// NewGrid returns a grid covering width x height metres with square cells.
func NewGrid(width, height, cellSize float64) (*Grid, error) {
	return geom.NewGrid(width, height, cellSize)
}

// CrossedDeployment places m links alternating between vertical and
// horizontal orientations across a w x h area.
func CrossedDeployment(w, h float64, m int) []Segment {
	return geom.CrossedDeployment(w, h, m)
}

// Matrix is a dense row-major matrix of float64, the fingerprint database
// representation.
type Matrix = mat.Matrix

// NewMatrix returns a zero r x c matrix.
func NewMatrix(r, c int) *Matrix { return mat.New(r, c) }

// Channel simulation (testbed substitute).
type (
	// Channel is the simulated radio environment.
	Channel = rf.Channel
	// ChannelParams configures the channel model.
	ChannelParams = rf.Params
)

// DefaultChannelParams returns the calibrated channel model parameters
// (drift anchored to the paper's 2.5 dBm @ 5 d and 6 dBm @ 45 d).
func DefaultChannelParams() ChannelParams { return rf.DefaultParams() }

// NewChannel builds a channel over the given links and grid.
func NewChannel(params ChannelParams, links []Segment, grid *Grid) (*Channel, error) {
	return rf.NewChannel(params, links, grid)
}

// Deployment types.
type (
	// Deployment is an instantiated testbed: grid, links, channel, and
	// survey-cost accounting.
	Deployment = testbed.Deployment
	// TestbedConfig describes a deployment.
	TestbedConfig = testbed.Config
	// SurveyCost is the human labor cost of a fingerprint campaign.
	SurveyCost = testbed.SurveyCost
)

// PaperConfig returns the paper's deployment: 96 cells of 0.6 m covered
// by 10 links.
func PaperConfig() TestbedConfig { return testbed.PaperConfig() }

// SquareConfig returns a deployment over an edge x edge area with links
// scaled to the perimeter (the Fig 4 sweep).
func SquareConfig(edge float64) TestbedConfig { return testbed.SquareConfig(edge) }

// NewDeployment builds a deployment from cfg.
func NewDeployment(cfg TestbedConfig) (*Deployment, error) { return testbed.New(cfg) }

// Core system types.
type (
	// System is the end-to-end TafLoc pipeline.
	System = core.System
	// SystemOptions configures a System.
	SystemOptions = core.SystemOptions
	// Layout is the deployment geometry the fingerprint matrix is
	// defined over.
	Layout = core.Layout
	// LoLiOptions are the LoLi-IR reconstruction hyperparameters.
	LoLiOptions = core.LoLiOptions
	// ReferenceOptions controls reference-location selection.
	ReferenceOptions = core.ReferenceOptions
	// Reconstruction is the result of one LoLi-IR run.
	Reconstruction = core.Reconstruction
	// UpdateInput bundles the measurements a low-cost update consumes.
	UpdateInput = core.UpdateInput
	// Reconstructor runs LoLi-IR for one layout.
	Reconstructor = core.Reconstructor
	// SystemState is the complete calibrated state of a System, as
	// exported by System.ExportState and consumed by RestoreSystem —
	// the unit the persistence layer snapshots for warm restarts.
	SystemState = core.SystemState
	// Model is a System's immutable read plane — radio map, geometry,
	// observed mask, matcher, and vacant baseline frozen at one
	// calibration instant — published via System.Model. Any number of
	// goroutines may Locate against one Model without locks; Update
	// swaps in a successor without disturbing readers.
	Model = core.Model
	// Scratch holds the reusable per-call buffers of the matchers;
	// threading one through repeated Locate calls makes the steady
	// state allocation-free.
	Scratch = core.Scratch
	// Location is a localization estimate.
	Location = core.Location
	// Matcher locates live measurements against a database.
	Matcher = core.Matcher
	// NNMatcher is plain nearest-neighbour matching.
	NNMatcher = core.NNMatcher
	// KNNMatcher adds inverse-distance-weighted centroid refinement.
	KNNMatcher = core.KNNMatcher
	// BayesMatcher produces posterior confidences.
	BayesMatcher = core.BayesMatcher
	// WeightedKNNMatcher is the mask-aware matcher used after updates.
	WeightedKNNMatcher = core.WeightedKNNMatcher
	// Detector gates localization on target presence.
	Detector = core.Detector
)

// NewLayout validates and builds a Layout.
func NewLayout(links []Segment, grid *Grid, ellipseExcess float64) (*Layout, error) {
	return core.NewLayout(links, grid, ellipseExcess)
}

// NewSystem builds a System from a day-0 full survey.
//
// Deprecated: use Open, which takes functional options instead of a
// positional options struct.
func NewSystem(layout *Layout, survey *Matrix, vacant []float64, opts SystemOptions) (*System, error) {
	return core.NewSystem(layout, survey, vacant, opts)
}

// DefaultSystemOptions returns the configuration used throughout the
// reproduction.
func DefaultSystemOptions() SystemOptions { return core.DefaultSystemOptions() }

// DefaultLoLiOptions returns the LoLi-IR hyperparameters used in the
// experiments.
func DefaultLoLiOptions() LoLiOptions { return core.DefaultLoLiOptions() }

// DefaultReferenceOptions matches the paper's reference selection.
func DefaultReferenceOptions() ReferenceOptions { return core.DefaultReferenceOptions() }

// SelectReferences picks reference locations from a historical
// fingerprint matrix via rank-revealing QR.
func SelectReferences(x *Matrix, opts ReferenceOptions) ([]int, error) {
	return core.SelectReferences(x, opts)
}

// MaskFromSurvey derives the undistorted-entry mask B empirically from a
// day-0 survey.
func MaskFromSurvey(survey *Matrix, vacant []float64, thresholdDB float64) (*Matrix, error) {
	return core.MaskFromSurvey(survey, vacant, thresholdDB)
}

// NewScratch returns an empty matcher Scratch; buffers grow lazily and
// are reused across Locate calls. Give each goroutine its own.
func NewScratch() *Scratch { return core.NewScratch() }

// NewModel assembles an immutable localization Model from its parts,
// taking ownership of every argument (callers must not mutate them
// afterwards). Most callers want System.Model instead; this constructor
// exists for matcher experiments over a bare database.
func NewModel(layout *Layout, x, observed *Matrix, vacant []float64, refs []int, m Matcher) (*Model, error) {
	return core.NewModel(layout, x, observed, vacant, refs, m)
}

// RestoreSystem rebuilds a System from a state exported with
// System.ExportState, skipping every calibration step (survey, mask
// learning, reference selection) — the warm-start path. States decoded
// from damaged snapshots fail closed with taflocerr.ErrSnapshotCorrupt.
func RestoreSystem(st *SystemState) (*System, error) { return core.RestoreSystem(st) }

// BuildSystem surveys dep at day 0 and constructs a System with default
// options — the one-call quickstart path.
//
// Deprecated: use OpenDeployment, which additionally accepts functional
// options.
func BuildSystem(dep *Deployment) (*System, error) {
	return OpenDeployment(dep)
}

// Baselines.
type (
	// RTIImager is the Radio Tomographic Imaging baseline.
	RTIImager = rti.Imager
	// RTIOptions configures the imager.
	RTIOptions = rti.Options
	// RASSTracker is the RASS fingerprint-tracking baseline.
	RASSTracker = rass.Tracker
	// RASSOptions configures the tracker.
	RASSOptions = rass.Options
)

// NewRTIImager builds the RTI baseline for a deployment geometry.
func NewRTIImager(links []Segment, grid *Grid, opts RTIOptions) (*RTIImager, error) {
	return rti.NewImager(links, grid, opts)
}

// DefaultRTIOptions returns the published RTI parameterization adapted
// to our grids.
func DefaultRTIOptions() RTIOptions { return rti.DefaultOptions() }

// NewRASSTracker builds the RASS baseline over a fingerprint database.
func NewRASSTracker(x *Matrix, vacant []float64, grid *Grid, opts RASSOptions) (*RASSTracker, error) {
	return rass.NewTracker(x, vacant, grid, opts)
}

// DefaultRASSOptions returns the RASS configuration used in comparisons.
func DefaultRASSOptions() RASSOptions { return rass.DefaultOptions() }

// Evaluation harnesses.
type (
	// ExperimentConfig parameterizes the figure harnesses.
	ExperimentConfig = eval.ExperimentConfig
	// Figure is a reproducible figure (series + notes).
	Figure = eval.Figure
	// Table is a reproducible table.
	Table = eval.Table
	// CDF is an empirical cumulative distribution.
	CDF = eval.CDF
	// Summary holds order statistics of an error sample.
	Summary = eval.Summary
)

// DefaultExperimentConfig returns the harness configuration used by the
// benchmarks.
func DefaultExperimentConfig() ExperimentConfig { return eval.DefaultExperimentConfig() }

// Fig1 characterizes the fingerprint matrix structure (singular values,
// distorted share).
func Fig1(cfg ExperimentConfig) (*Figure, error) { return eval.Fig1(cfg) }

// Fig3 regenerates the fingerprint-reconstruction-error CDFs.
func Fig3(cfg ExperimentConfig) (*Figure, error) { return eval.Fig3(cfg) }

// Fig4 regenerates the update-time-cost area sweep.
func Fig4() (*Figure, error) { return eval.Fig4() }

// Fig5 regenerates the four-system localization comparison at 3 months.
func Fig5(cfg ExperimentConfig) (*Figure, error) { return eval.Fig5(cfg) }

// DriftTable regenerates the in-text drift measurements.
func DriftTable(cfg ExperimentConfig) (*Table, error) { return eval.DriftTable(cfg) }

// CostTable regenerates the in-text 6 m x 6 m cost arithmetic.
func CostTable() (*Table, error) { return eval.CostTable() }

// Ablation quantifies the LoLi-IR design choices.
func Ablation(cfg ExperimentConfig) (*Table, error) { return eval.Ablation(cfg) }

// Summarize computes order statistics of an error sample.
func Summarize(vals []float64) Summary { return eval.Summarize(vals) }

// NewCDF builds the empirical CDF of vals.
func NewCDF(vals []float64) CDF { return eval.NewCDF(vals) }

// Tracking and time-adaptive maintenance.
type (
	// TrackFilter is a constant-velocity Kalman filter over location
	// fixes, with innovation gating.
	TrackFilter = track.Filter
	// TrackOptions configures the filter.
	TrackOptions = track.Options
	// TrackState is the filter's kinematic estimate.
	TrackState = track.State
	// DriftMonitor recommends fingerprint updates from cheap drift
	// signals (the "time-adaptive" scheduling in the paper's title).
	DriftMonitor = core.DriftMonitor
	// DriftEstimate is one monitor assessment.
	DriftEstimate = core.DriftEstimate
)

// NewTrackFilter builds a trajectory filter.
func NewTrackFilter(opts TrackOptions) (*TrackFilter, error) { return track.NewFilter(opts) }

// DefaultTrackOptions suits walking targets localized about once per
// second.
func DefaultTrackOptions() TrackOptions { return track.DefaultOptions() }

// NewDriftMonitor builds a time-adaptive update trigger from baselines
// captured at the last update.
func NewDriftMonitor(vacant, spotCol []float64, spotCell int, triggerDB float64) (*DriftMonitor, error) {
	return core.NewDriftMonitor(vacant, spotCol, spotCell, triggerDB)
}

// Measurement-collection pipeline.
type (
	// Collector receives RSS report frames over UDP and serves the TCP
	// control plane.
	Collector = collector.Collector
	// Fleet runs one simulated link agent per channel link.
	Fleet = collector.Fleet
	// AgentConfig configures a fleet.
	AgentConfig = collector.AgentConfig
	// Orchestrator drives survey passes over the control plane.
	Orchestrator = collector.Orchestrator
	// RSSReport is the data-plane frame format.
	RSSReport = wire.RSSReport
	// TargetFunc reports the simulated target position to agents.
	TargetFunc = collector.TargetFunc
)

// NewCollector builds a collector for m links.
func NewCollector(m, window int) (*Collector, error) {
	return collector.New(m, window, nil)
}

// Multi-zone serving layer.
type (
	// Service is the sharded, concurrent multi-zone localization service:
	// one core System per zone, bounded ingest queues, batched match
	// queries, and a lock-free read-mostly position snapshot.
	Service = serve.Service
	// ServiceConfig tunes the service's queues, batching, and detection.
	ServiceConfig = serve.Config
	// Ingestor is the transport-agnostic ingestion surface every report
	// transport funnels through (implemented by *Service).
	Ingestor = serve.Ingestor
	// ZoneReport is one RSS sample addressed to one link of a zone.
	ZoneReport = serve.Report
	// ZoneEstimate is a zone's most recent published position estimate.
	ZoneEstimate = serve.Estimate
	// ZoneStats snapshots one zone's ingest and serving counters.
	ZoneStats = serve.ZoneStats
	// ZoneTrackPoint is one sample of a zone's smoothed trajectory, as
	// served by Service.Track and GET /v2/zones/{id}/track.
	ZoneTrackPoint = serve.TrackPoint
	// SnapshotStore is the pluggable snapshot store behind tiered zone
	// storage: Checkpoint/Restore targets and the backing store of the
	// hot-zone cap (WithMaxHotZones). Implement it to put zone
	// snapshots anywhere that can round-trip opaque bytes under a zone
	// ID; NewDirStore and NewMemStore are the built-in backends.
	SnapshotStore = store.Store
)

// NewDirStore opens the local-directory snapshot store rooted at dir:
// one atomically-replaced "<escaped-id>.snap" file per zone, the same
// layout Service.Checkpoint writes — an existing state directory is
// usable as a residency store as-is.
func NewDirStore(dir string) SnapshotStore { return store.NewDir(dir) }

// NewMemStore returns an in-memory snapshot store: eviction with it
// bounds resident Models without touching disk (the snapshots do not
// survive the process).
func NewMemStore() SnapshotStore { return store.NewMem() }

// NewServiceFromConfig builds a multi-zone service from a positional
// configuration struct. It panics on an unknown Config.Detector name —
// the legacy contract, kept for compatibility.
//
// Deprecated: use NewService, which takes functional options
// (WithZoneQueue, WithDetector, WithZoneFactory, ...) and returns
// configuration errors instead of panicking.
func NewServiceFromConfig(cfg ServiceConfig) *Service { return serve.New(cfg) }

// ReportFromWire converts a decoded data-plane frame into a service
// report.
func ReportFromWire(r *RSSReport) ZoneReport { return serve.FromWire(r) }

// IngestSink adapts an Ingestor into a collector batch sink for one
// zone — wire it with Collector.SetBatchSink so UDP batch datagrams
// travel the serving layer's shared ingest path (validation, load
// shedding, and counters identical to HTTP ingest).
func IngestSink(ing Ingestor, zone string) func([]RSSReport) { return serve.IngestSink(ing, zone) }

// SetWorkers sets the worker count used by the parallel reconstruction
// and matching kernels and returns the previous setting; n <= 0 restores
// the GOMAXPROCS-aware default.
func SetWorkers(n int) int { return mat.SetWorkers(n) }

// Workers returns the effective parallel worker count.
func Workers() int { return mat.Workers() }

// NewFleet dials a collector and prepares one agent per link.
func NewFleet(ch *Channel, dataAddr string, cfg AgentConfig) (*Fleet, error) {
	return collector.NewFleet(ch, dataAddr, cfg)
}

// DialOrchestrator connects to a collector's control address.
func DialOrchestrator(ctrlAddr string) (*Orchestrator, error) {
	return collector.Dial(ctrlAddr)
}
